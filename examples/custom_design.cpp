/// \file custom_design.cpp
/// Shows how a downstream user builds their *own* routing instance with
/// the db API — a small standard-cell-row layout with macros — routes it
/// TPL-aware, and inspects the mask assignment as ASCII art (one picture
/// per TPL layer; letters r/g/b are the three masks, '#' is a macro,
/// digits are pins).

#include <cstdio>
#include <string>
#include <vector>

#include "core/mrtpl_router.hpp"
#include "db/design.hpp"
#include "eval/metrics.hpp"

using namespace mrtpl;

int main() {
  db::TechRules rules;
  rules.dcolor = 2;
  db::Design design("custom", db::Tech::make_default(3, 2, rules), {0, 0, 35, 19});

  // A macro blocking the center-left region of both TPL layers.
  for (int layer = 0; layer < 2; ++layer)
    design.add_obstacle({layer, {8, 7, 13, 12}});

  // Three nets imitating cell-row connectivity.
  struct NetDef {
    const char* name;
    std::vector<std::pair<int, int>> pins;
  };
  const NetDef defs[] = {
      {"clk", {{2, 2}, {18, 2}, {33, 2}, {18, 17}}},
      {"d0", {{2, 9}, {20, 9}, {33, 9}}},
      {"q0", {{2, 16}, {16, 16}, {33, 16}}},
  };
  for (const auto& def : defs) {
    const db::NetId id = design.add_net(def.name);
    int i = 0;
    for (const auto& [x, y] : def.pins) {
      db::Pin p;
      p.name = std::string(def.name) + "_p" + std::to_string(i++);
      p.layer = 0;
      p.shapes = {{x, y, x, y}};
      design.add_pin(id, p);
    }
  }
  design.validate();

  grid::RoutingGrid grid(design);
  core::MrTplRouter router(design, nullptr, core::RouterConfig{});
  const grid::Solution sol = router.run(grid);
  const eval::Metrics m = eval::evaluate(grid, sol, nullptr);
  std::printf("custom design: %d nets, conflicts=%d stitches=%d failed=%d\n\n",
              design.num_nets(), m.conflicts, m.stitches, m.failed_nets);

  const char mask_char[3] = {'r', 'g', 'b'};
  for (int layer = 0; layer < 2; ++layer) {
    std::printf("layer M%d (%s):\n", layer + 1,
                design.tech().is_horizontal(layer) ? "horizontal" : "vertical");
    for (int y = design.die().hi.y; y >= 0; --y) {
      std::string row;
      for (int x = 0; x <= design.die().hi.x; ++x) {
        const grid::VertexId v = grid.vertex(layer, x, y);
        char c = '.';
        if (grid.blocked(v)) c = '#';
        else if (grid.is_pin_vertex(v)) c = static_cast<char>('1' + grid.owner(v));
        else if (grid.mask(v) != grid::kNoMask) c = mask_char[grid.mask(v)];
        else if (grid.owner(v) != db::kNoNet) c = '?';
        row += c;
      }
      std::printf("  %s\n", row.c_str());
    }
    std::printf("\n");
  }
  return m.failed_nets == 0 ? 0 : 1;
}
