/// \file analysis_pipeline.cpp
/// Example: the full post-routing analysis pipeline on one case.
///
/// Routes a mid-size synthetic design with Mr.TPL, then demonstrates every
/// analysis facility a downstream user gets beyond the headline metrics:
///
///   1. independent DRC / connectivity verification (drc::verify),
///   2. per-layer and per-net-degree breakdowns (eval::per_layer/...),
///   3. conflict-cluster statistics (eval::conflict_stats),
///   4. post-hoc recolor repair headroom (layout::recolor_refine),
///   5. machine-readable JSON export (io::write_report_array).
///
/// Build and run:  ./build/examples/analysis_pipeline

#include <cstdio>
#include <iostream>

#include "benchgen/generator.hpp"
#include "core/mrtpl_router.hpp"
#include "drc/checker.hpp"
#include "eval/breakdown.hpp"
#include "eval/metrics.hpp"
#include "global/global_router.hpp"
#include "io/json_report.hpp"
#include "layout/recolor.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mrtpl;

  // -- route ------------------------------------------------------------
  benchgen::CaseSpec spec = benchgen::ablation_case();
  spec.name = "analysis_demo";
  const db::Design design = benchgen::generate(spec);
  global::GlobalRouter gr(design);
  const global::GuideSet guides = gr.route_all();

  grid::RoutingGrid grid(design);
  util::Timer timer;
  core::MrTplRouter router(design, &guides, core::RouterConfig{});
  const grid::Solution solution = router.run(grid);
  const double seconds = timer.elapsed_s();

  const eval::Metrics metrics = eval::evaluate(grid, solution, &guides);
  std::printf("routed %s: %d nets in %.2fs — conflicts=%d stitches=%d "
              "cost=%.4E\n\n",
              design.name().c_str(), design.num_nets(), seconds,
              metrics.conflicts, metrics.stitches, metrics.cost);

  // -- 1. independent verification ---------------------------------------
  const drc::DrcReport drc_report = drc::verify(grid, design, solution);
  std::printf("DRC: %s\n",
              drc_report.clean() ? "clean" : drc_report.summary().c_str());

  // -- 2. breakdowns ------------------------------------------------------
  std::printf("\nper-layer:\n  %-6s %-4s %-10s %-8s %s\n", "layer", "tpl",
              "wirelength", "stitches", "violations");
  for (const auto& l : eval::per_layer(grid, solution))
    std::printf("  %-6d %-4s %-10ld %-8d %d\n", l.layer, l.tpl ? "yes" : "no",
                l.wirelength, l.stitches, l.violating_vertices);

  std::printf("\nper-degree:\n  %-6s %-6s %-8s %s\n", "pins", "nets",
              "stitches", "conflicts");
  for (const auto& d : eval::per_degree(grid, design, solution))
    std::printf("  %-6d %-6d %-8d %d\n", d.degree, d.nets, d.stitches,
                d.conflicts);

  // -- 3. conflict shape ----------------------------------------------------
  const eval::ConflictStats cs = eval::conflict_stats(grid);
  std::printf("\nconflict clusters: %d (pairs=%d, largest=%d, mean=%.1f, "
              "nets involved=%d)\n",
              cs.clusters, cs.violating_pairs, cs.largest_cluster,
              cs.mean_cluster_size, cs.nets_involved);

  // -- 4. repair headroom ---------------------------------------------------
  const layout::RecolorStats refine = layout::recolor_refine(grid, solution);
  std::printf("\nrecolor repair pass: %d move(s) in %d pass(es) — "
              "violations %d -> %d, stitch edges %d -> %d\n",
              refine.moves, refine.passes, refine.violations_before,
              refine.violations_after, refine.stitches_before,
              refine.stitches_after);
  std::printf("(near-zero moves is the expected result: Mr.TPL colors "
              "during routing, leaving a repair pass no headroom)\n");

  // -- 5. JSON export ---------------------------------------------------------
  io::CaseReport report;
  report.case_name = design.name();
  report.flow = "mrtpl";
  report.runtime_s = seconds;
  report.metrics = metrics;
  report.layers = eval::per_layer(grid, solution);
  report.degrees = eval::per_degree(grid, design, solution);
  std::printf("\nJSON report:\n");
  io::write_report_array(std::cout, {report});
  return drc_report.clean() ? 0 : 1;
}
