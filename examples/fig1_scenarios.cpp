/// \file fig1_scenarios.cpp
/// Reproduces the *scenarios* of the paper's Fig. 1:
///
///  (a) four mutually-close features — post-routing decomposition cannot
///      3-color them (an unresolvable conflict survives);
///  (b/d) the same region routed TPL-aware — Mr.TPL spaces/colors the
///      wires so no conflict and no stitch remains;
///  (c) 2-pin decomposition of a multi-pin net (DAC-2012 style) produces
///      stitches at junctions that the multi-pin-aware router avoids.

#include <cstdio>

#include "baseline/dac12_router.hpp"
#include "baseline/decomposer.hpp"
#include "baseline/plain_router.hpp"
#include "core/mrtpl_router.hpp"
#include "eval/metrics.hpp"

using namespace mrtpl;

namespace {

/// Four 2-pin nets funneled through a 5-track channel between two macro
/// blocks, with dcolor = 3. Packed onto four adjacent tracks the wires
/// form a K4 in the conflict graph — the unsolvable pattern of Fig. 1(a).
/// The channel is 5 tracks tall, so a spacing-aware router can place the
/// fourth wire one track apart and reuse a mask legally; a colorless
/// router has no reason to, and the post-hoc decomposer cannot move it.
db::Design dense_cluster() {
  db::TechRules rules;
  rules.dcolor = 3;
  db::Design d("fig1a", db::Tech::make_default(2, 2, rules), {0, 0, 23, 23});
  // Walls across x in [8,15] with two openings: the main channel (rows
  // 8..11 — only 4 tracks, a K4 at dcolor=3 if all four wires use it)
  // and a remote overflow channel (rows 18..19).
  for (int layer = 0; layer < 2; ++layer) {
    d.add_obstacle({layer, {8, 0, 15, 7}});
    d.add_obstacle({layer, {8, 12, 15, 17}});
    d.add_obstacle({layer, {8, 20, 15, 23}});
  }
  // All pins sit near the main channel, so the shortest route for every
  // net runs through it.
  for (int i = 0; i < 4; ++i) {
    const db::NetId n = d.add_net("n" + std::to_string(i));
    db::Pin p;
    p.layer = 0;
    p.shapes = {{2, 6 + 2 * i, 2, 6 + 2 * i}};
    d.add_pin(n, p);
    p.shapes = {{21, 6 + 2 * i, 21, 6 + 2 * i}};
    d.add_pin(n, p);
  }
  d.validate();
  return d;
}

/// A 3-pin net that must cross a one-track corridor whose two halves are
/// dominated by different committed masks — the Fig. 1(c) vs 1(d)
/// setting: some color change is unavoidable, and the router chooses
/// where to stitch. The corridor runs on M1 at y=8 (rows 7 and 9 carry
/// the context wires, M2 is blocked above the wall region so the wire
/// cannot escape vertically).
db::Design star_net() {
  db::TechRules rules;
  rules.dcolor = 2;
  db::Design d("fig1c", db::Tech::make_default(2, 2, rules), {0, 0, 23, 23});
  // Walls on M1 leave rows 7..9 open for x in [4,19]; M2 is blocked over
  // the same span, so the corridor is strictly planar.
  d.add_obstacle({0, {4, 0, 19, 6}});
  d.add_obstacle({0, {4, 10, 19, 23}});
  d.add_obstacle({1, {4, 0, 19, 23}});

  const db::NetId n = d.add_net("star");
  db::Pin p;
  p.layer = 0;
  for (const auto& [x, y] : {std::pair{2, 8}, {21, 8}, {2, 16}}) {
    p.shapes = {{x, y, x, y}};
    d.add_pin(n, p);
  }
  // Context nets occupying the corridor's edge rows: red on the left half
  // of row 7, green on the right half of row 7, blue along row 9. The
  // free row 8 is then forced: left half != red,blue -> green; right half
  // != green,blue -> red; a stitch must appear mid-corridor.
  for (int i = 0; i < 3; ++i) {
    const db::NetId c = d.add_net("ctx" + std::to_string(i));
    db::Pin q;
    q.layer = 0;
    const geom::Rect at[3] = {{4, 7, 4, 7}, {19, 7, 19, 7}, {4, 9, 4, 9}};
    q.shapes = {at[i]};
    d.add_pin(c, q);
    d.add_pin(c, q);  // degenerate 2-pin net; pre-committed below anyway
  }
  d.validate();
  return d;
}

/// Pre-route and color the context nets: red x4..11 on row 7, green
/// x12..19 on row 7, blue x4..19 on row 9.
grid::Solution commit_context(grid::RoutingGrid& g, const db::Design& d) {
  grid::Solution sol;
  sol.routes.resize(static_cast<size_t>(d.num_nets()));
  struct Ctx {
    int y, x0, x1;
    grid::Mask mask;
  };
  const Ctx ctx[3] = {{7, 4, 11, 0}, {7, 12, 19, 1}, {9, 4, 19, 2}};
  for (int i = 0; i < 3; ++i) {
    const db::NetId net = 1 + i;
    grid::NetRoute r;
    r.net = net;
    r.routed = true;
    std::vector<grid::VertexId> path;
    for (int x = ctx[i].x0; x <= ctx[i].x1; ++x)
      path.push_back(g.vertex(0, x, ctx[i].y));
    r.paths = {path};
    const auto verts = r.vertices();
    grid::commit_route(g, r,
                       std::vector<grid::Mask>(verts.size(), ctx[i].mask));
    sol.routes[static_cast<size_t>(net)] = std::move(r);
  }
  return sol;
}

void report(const char* label, const grid::RoutingGrid& g,
            const grid::Solution& sol) {
  const eval::Metrics m = eval::evaluate(g, sol, nullptr);
  std::printf("  %-34s conflicts=%d stitches=%d\n", label, m.conflicts, m.stitches);
}

}  // namespace

int main() {
  std::printf("Fig. 1(a) vs 1(b): dense 4-net cluster\n");
  {
    const db::Design d = dense_cluster();
    // Decomposition flow: route colorless, then 3-color the fixed layout.
    grid::RoutingGrid g_dec(d);
    const grid::Solution plain = baseline::route_plain(d, nullptr, g_dec);
    baseline::decompose(g_dec, plain);
    report("route-then-decompose:", g_dec, plain);

    // Mr.TPL: colors considered during routing.
    grid::RoutingGrid g_ours(d);
    core::MrTplRouter ours(d, nullptr, core::RouterConfig{});
    const grid::Solution sol = ours.run(g_ours);
    report("Mr.TPL (TPL-aware routing):", g_ours, sol);
  }

  std::printf("\nFig. 1(c) vs 1(d): 5-pin star net in a tri-colored context\n");
  {
    const db::Design d = star_net();
    // Both routers see the same pre-colored context; only the star net
    // (net 0) is routed by the algorithm under test.
    grid::RoutingGrid g_base(d);
    grid::Solution sol_base = commit_context(g_base, d);
    baseline::Dac12Router base(d, nullptr, core::RouterConfig{});
    sol_base.routes[0] = base.route_net(g_base, 0);
    report("DAC-2012 (2-pin decomposition):", g_base, sol_base);

    grid::RoutingGrid g_ours(d);
    grid::Solution sol_ours = commit_context(g_ours, d);
    core::RouterConfig cfg;
    core::MrTplRouter ours(d, nullptr, cfg);
    core::ColorSearch search(g_ours, cfg);
    sol_ours.routes[0] = ours.route_net(g_ours, search, 0);
    report("Mr.TPL (multi-pin aware):", g_ours, sol_ours);
  }
  return 0;
}
