/// \file quickstart.cpp
/// Five-minute tour of the public API, narrating the paper's Fig. 3:
/// a single 4-pin net is routed with Mr.TPL, and we print each connection
/// path with its color states, the final per-vertex masks, and the
/// conflict/stitch metrics. Build & run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/color_state.hpp"
#include "core/mrtpl_router.hpp"
#include "db/design.hpp"
#include "eval/metrics.hpp"

using namespace mrtpl;

int main() {
  // 1. Describe the technology: 2 metal layers, both TPL-critical,
  //    same-mask spacing window of 2 tracks.
  db::TechRules rules;
  rules.dcolor = 2;
  db::Tech tech = db::Tech::make_default(/*num_layers=*/2, /*tpl_layers=*/2, rules);

  // 2. Build the design: a 20x20 die with one 4-pin net (Fig. 3's "1..4").
  db::Design design("fig3", std::move(tech), {0, 0, 19, 19});
  const db::NetId net = design.add_net("fig3_net");
  const std::pair<int, int> pin_at[4] = {{2, 2}, {16, 3}, {3, 15}, {15, 16}};
  for (int i = 0; i < 4; ++i) {
    db::Pin pin;
    pin.name = "pin" + std::to_string(i + 1);
    pin.layer = 0;
    pin.shapes.push_back(
        {pin_at[i].first, pin_at[i].second, pin_at[i].first, pin_at[i].second});
    design.add_pin(net, pin);
  }
  design.validate();

  // 3. Route with Mr.TPL. route_net exposes the per-net flow so we can
  //    narrate each pin-to-tree connection of Algorithm 1.
  grid::RoutingGrid grid(design);
  core::RouterConfig config;
  core::MrTplRouter router(design, /*guides=*/nullptr, config);
  core::ColorSearch search(grid, config);
  const grid::NetRoute route = router.route_net(grid, search, net);

  std::printf("routed %s: %s, %zu path(s)\n", design.name().c_str(),
              route.routed ? "success" : "FAILED", route.paths.size());
  int connection = 0;
  for (const auto& path : route.paths) {
    if (path.size() < 2) continue;  // pin metal bookkeeping entries
    ++connection;
    std::printf("\nconnection %d (%zu vertices):\n", connection, path.size());
    for (const auto v : path) {
      const grid::VertexLoc l = grid.loc(v);
      const grid::Mask m = grid.mask(v);
      std::printf("  M%d (%2d,%2d)  mask=%s\n", l.layer + 1, l.x, l.y,
                  m == grid::kNoMask
                      ? "---"
                      : core::ColorState::only(m).to_string().c_str());
    }
  }

  // 4. Evaluate: a solo 4-pin net must come out conflict-free and — thanks
  //    to set-based color states — stitch-free, the Fig. 3(g) outcome.
  grid::Solution solution;
  solution.routes.push_back(route);
  const eval::Metrics m = eval::evaluate(grid, solution, nullptr);
  std::printf("\nmetrics: conflicts=%d stitches=%d wirelength=%ld vias=%ld\n",
              m.conflicts, m.stitches, m.wirelength, m.vias);
  return (m.conflicts == 0 && route.routed) ? 0 : 1;
}
