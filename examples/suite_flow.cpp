/// \file suite_flow.cpp
/// Full-flow example on a generated benchmark case: pick any case of
/// either suite by name, run global routing, Mr.TPL detailed routing,
/// and print the solution metrics — the workload of the paper's
/// evaluation section in one executable.
///
///   ./build/examples/suite_flow                 # default: ispd18_test1
///   ./build/examples/suite_flow ispd19_test3

#include <cstdio>
#include <cstring>
#include <string>

#include "benchgen/generator.hpp"
#include "core/mrtpl_router.hpp"
#include "eval/metrics.hpp"
#include "global/global_router.hpp"
#include "util/timer.hpp"

using namespace mrtpl;

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "ispd18_test1";

  benchgen::CaseSpec spec;
  bool found = false;
  for (const auto& s : benchgen::ispd2018_suite())
    if (s.name == wanted) {
      spec = s;
      found = true;
    }
  for (const auto& s : benchgen::ispd2019_suite())
    if (s.name == wanted) {
      spec = s;
      found = true;
    }
  if (!found) {
    std::fprintf(stderr, "unknown case '%s' (use ispd18_test1..10 or ispd19_test1..10)\n",
                 wanted.c_str());
    return 2;
  }

  util::Timer total;
  const db::Design design = benchgen::generate(spec);
  std::printf("case %s: die %dx%d, %d nets, %d pins, %zu obstacles\n",
              spec.name.c_str(), design.die().width(), design.die().height(),
              design.num_nets(), design.total_pins(), design.obstacles().size());

  util::Timer t_gr;
  global::GlobalRouter gr(design);
  const global::GuideSet guides = gr.route_all();
  std::printf("global routing: %.2fs (%dx%d gcells)\n", t_gr.elapsed_s(),
              gr.gcells_x(), gr.gcells_y());

  grid::RoutingGrid grid(design);
  util::Timer t_dr;
  core::MrTplRouter router(design, &guides, core::RouterConfig{});
  const grid::Solution sol = router.run(grid);
  const double dr_s = t_dr.elapsed_s();

  const eval::Metrics m = eval::evaluate(grid, sol, &guides);
  std::printf("detailed routing: %.2fs, %d RRR iteration(s), %llu relaxations\n",
              dr_s, router.stats().rrr_iterations,
              static_cast<unsigned long long>(router.stats().relaxations));
  std::printf("conflict trajectory:");
  for (const int c : router.stats().conflicts_per_iter) std::printf(" %d", c);
  std::printf("\n");
  if (argc > 2 && std::string(argv[2]) == "--stitches") {
    for (const auto& r : sol.routes) {
      for (const auto& [a, b] : r.edges()) {
        if (grid.loc(a).layer != grid.loc(b).layer) continue;
        if (grid.mask(a) == grid.mask(b) || grid.mask(a) == grid::kNoMask ||
            grid.mask(b) == grid::kNoMask)
          continue;
        const auto la = grid.loc(a);
        const auto lb = grid.loc(b);
        std::printf("stitch net=%s M%d (%d,%d)m%d-(%d,%d)m%d pin_a=%d pin_b=%d\n",
                    design.net(r.net).name.c_str(), la.layer + 1, la.x, la.y,
                    grid.mask(a), lb.x, lb.y, grid.mask(b),
                    grid.is_pin_vertex(a) ? 1 : 0, grid.is_pin_vertex(b) ? 1 : 0);
      }
    }
  }
  std::printf("result: conflicts=%d stitches=%d wirelength=%ld vias=%ld "
              "wrong_way=%ld out_of_guide=%ld failed=%d cost=%.4E\n",
              m.conflicts, m.stitches, m.wirelength, m.vias, m.wrong_way,
              m.out_of_guide, m.failed_nets, m.cost);
  std::printf("total: %.2fs\n", total.elapsed_s());
  return m.failed_nets == 0 ? 0 : 1;
}
