/// \file cli.cpp
/// Implementation of the mrtpl CLI subcommands. See cli.hpp for the
/// entry points and mrtpl_cli.cpp for the binary wrapper. Subcommands:
///
///   list-cases
///       Print every named benchmark case of both suites plus the
///       registered stress scenarios.
///   suite [--filter s] [--quick] [--json file] [--threads N] [--tiles K]
///       [--timeout S] [--list]
///       Run the stress-scenario registry end to end (generate -> global
///       -> route -> evaluate -> DRC-verify), one human line per scenario
///       on stdout and, with --json, one JSON metrics line per scenario.
///       Exit 0 iff every selected scenario passes.
///   generate --case <name> [--out design.txt]
///       Generate a synthetic case and save it.
///   route --design <file> [--router mrtpl|dac12|decompose]
///       [--solution out.sol] [--svg out.svg] [--no-guides] [--rrr N]
///       [--threads N] [--tiles K] [--rescan-conflicts] [--deadline S]
///       [--max-relax N]
///       Route a saved design, print metrics, optionally dump artifacts.
///       --threads N routes RRR batches of disjoint-window nets on N
///       workers (output is byte-identical to --threads 1); --tiles K
///       shards the die into ~sqrt(K)² tiles routed via per-tile grid
///       views (core::ShardedRouter; output is byte-identical for every
///       tiles/threads combination, and only engages with --threads >= 2);
///       --rescan-conflicts swaps the incremental conflict engine for the
///       full-rescan debug oracle. --deadline / --max-relax bound the run
///       (route_budget.hpp); a degraded result exits 4.
///
/// Exit codes (pinned by test_cli_smoke): 0 success, 1 flow failure
/// (conflicts, DRC violations, unexpected errors), 2 usage, 3 malformed
/// input (io::ParseError), 4 budget-degraded result.
///   eval --design <file> --solution <file>
///       Re-verify a saved solution (conflicts/stitches/cost) offline.
///   verify --design <file> --solution <file> [--no-color-check]
///       Run the independent DRC/connectivity checker on a saved solution.
///   refine --design <file> --solution <file> [--out file]
///       Apply the post-hoc recoloring repair pass and report the delta.
///   report --design <file> --solution <file> [--flow name]
///       Emit the evaluation as JSON (metrics + per-layer/degree breakdowns).
///   session --design <file> [--store dir] [--script edits.txt] [--recover]
///       [--snapshot-every N] [--deadline S] [--degrade-relax N]
///       [--latency-watermark S] [--max-queue N] [--audit] [--out file]
///       Resident routing session: route the design once, then apply the
///       ECO edit script incrementally, one response line per edit. With
///       --store the session is crash-consistent (journal + snapshot in
///       the store directory); --recover resumes from that directory
///       instead of routing from scratch — a torn/corrupt journal tail is
///       truncated and reported, and still exits 0. --audit cross-checks
///       design/grid/solution coherence at the end. Exit 4 when any edit
///       was degraded/shed/deadlined, 1 when any was rejected (or the
///       audit failed).
///   serve --design <file> [--socket path] [--port N] [--store dir]
///       [--recover] [--idle-timeout S] [--per-client N] [--max-pending N]
///       [+ the session config flags]
///       Routing as a service: route once, then serve the resident
///       session over a Unix-domain socket and/or loopback TCP with the
///       MRTPLW01 wire protocol (server/protocol.hpp). Multi-client edits
///       serialize FIFO onto the one session, so the store stays
///       byte-identical to a --script run of the same sequence. SIGTERM /
///       a client `drain` request shut it down gracefully (exit 0).
///   send (--socket path | --port N) [--wait S] [--name s]
///       [--script edits.txt] [--edit "<line>"] [--ping token]
///       [--drain | --bye]
///       Drive a running daemon: hello, then the script/edit, then the
///       farewell (default bye). Same response lines and exit-code
///       discipline as `session --script`; a shed edit exits 4.

#include "cli.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "baseline/dac12_router.hpp"
#include "baseline/decomposer.hpp"
#include "baseline/plain_router.hpp"
#include "benchgen/generator.hpp"
#include "core/mrtpl_router.hpp"
#include "eval/metrics.hpp"
#include "global/global_router.hpp"
#include "drc/checker.hpp"
#include "eval/breakdown.hpp"
#include "io/design_io.hpp"
#include "io/json_report.hpp"
#include "io/parse_error.hpp"
#include "io/solution_io.hpp"
#include "layout/recolor.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "session/edit.hpp"
#include "session/invariant_audit.hpp"
#include "session/router_session.hpp"
#include "session/session_store.hpp"
#include "util/timer.hpp"
#include "viz/svg_render.hpp"

namespace mrtpl::cli {
namespace {

/// Minimal --flag/value option parser; positional[0] is the subcommand.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  static Args parse(const std::vector<std::string>& argv) {
    Args args;
    if (!argv.empty()) args.command = argv[0];
    for (size_t i = 1; i < argv.size(); ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) continue;
      a = a.substr(2);
      if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
        args.options[a] = argv[++i];
      } else {
        args.flags[a] = true;
      }
    }
    return args;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt : std::make_optional(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.contains(key) || options.contains(key);
  }
};

/// Strict integer flag parser: the whole word must be a number that fits
/// an int, otherwise nullopt (std::stoi alone would throw out of main and
/// abort on e.g. `--threads x`).
std::optional<int> parse_int(const std::string& word) {
  try {
    size_t used = 0;
    const int value = std::stoi(word, &used);
    if (used != word.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<benchgen::CaseSpec> find_case(const std::string& name) {
  for (const auto& s : benchgen::ispd2018_suite())
    if (s.name == name) return s;
  for (const auto& s : benchgen::ispd2019_suite())
    if (s.name == name) return s;
  if (name == "tiny") return benchgen::tiny_case();
  if (name == "ablation_mid") return benchgen::ablation_case();
  // Scenario names resolve to the full spec; "<name>_quick" to the CI
  // variant — so every registered stress case is generatable on its own.
  if (const auto* sc = scenario::ScenarioRegistry::builtin().find(name))
    return sc->full;
  constexpr const char* kQuickSuffix = "_quick";
  if (name.size() > std::strlen(kQuickSuffix) &&
      name.ends_with(kQuickSuffix)) {
    const std::string base = name.substr(0, name.size() - std::strlen(kQuickSuffix));
    if (const auto* sc = scenario::ScenarioRegistry::builtin().find(base))
      return sc->quick;
  }
  return std::nullopt;
}

int cmd_list_cases() {
  std::printf("%-16s %-9s %-6s %-6s %s\n", "case", "die", "nets", "dcolor", "seed");
  auto print_suite = [](const std::vector<benchgen::CaseSpec>& suite) {
    for (const auto& s : suite)
      std::printf("%-16s %dx%-5d %-6d %-6d %llu\n", s.name.c_str(), s.width,
                  s.height, s.num_nets, s.dcolor,
                  static_cast<unsigned long long>(s.seed));
  };
  print_suite(benchgen::ispd2018_suite());
  print_suite(benchgen::ispd2019_suite());
  std::printf("%-16s (unit-test scale)\n", "tiny");
  std::printf("%-16s (ablation benches)\n", "ablation_mid");
  std::printf("\nstress scenarios (run with `suite`, generate by name or "
              "<name>_quick):\n");
  for (const auto& sc : scenario::ScenarioRegistry::builtin().all())
    std::printf("%-24s %-12s %s\n", sc.name.c_str(),
                scenario::to_string(sc.family), sc.description.c_str());
  return 0;
}

int cmd_suite(const Args& args) {
  scenario::RunnerOptions options;
  options.quick = args.has("quick");
  if (const auto threads = args.get("threads")) {
    const auto n = parse_int(*threads);
    if (!n || *n < 1) {
      std::fprintf(stderr, "suite: --threads must be >= 1\n");
      return 2;
    }
    options.config.rrr_threads = *n;
  }
  if (const auto tiles = args.get("tiles")) {
    const auto n = parse_int(*tiles);
    if (!n || *n < 1) {
      std::fprintf(stderr, "suite: --tiles must be >= 1\n");
      return 2;
    }
    options.config.shard_tiles = *n;
  }
  if (const auto timeout = args.get("timeout")) {
    const auto n = parse_int(*timeout);
    if (!n || *n < 1) {
      std::fprintf(stderr, "suite: --timeout wants a positive integer (seconds)\n");
      return 2;
    }
    options.timeout_s = static_cast<double>(*n);
  }

  const std::string filter = args.get("filter").value_or("");
  const auto selection = scenario::ScenarioRegistry::builtin().filter(filter);
  if (selection.empty()) {
    std::fprintf(stderr, "suite: no scenario matches '%s' (see list-cases)\n",
                 filter.c_str());
    return 2;
  }

  if (args.has("list")) {
    for (const auto* sc : selection) {
      const auto& spec = sc->spec(options.quick);
      std::printf("%-24s %-12s %dx%-4d %4d nets  %s\n", sc->name.c_str(),
                  scenario::to_string(sc->family), spec.width, spec.height,
                  spec.num_nets, sc->description.c_str());
    }
    return 0;
  }

  std::ofstream json_os;
  if (const auto json_path = args.get("json")) {
    json_os.open(*json_path);
    if (!json_os) {
      std::fprintf(stderr, "suite: cannot open %s for writing\n",
                   json_path->c_str());
      return 2;
    }
  }

  const scenario::ScenarioRunner runner(options);
  const auto results = runner.run_all(selection, [&](const auto& result) {
    std::printf("%-24s %-8s conflicts=%d stitches=%d wirelength=%ld "
                "failed=%d drc=%s %.2fs%s%s\n",
                result.name.c_str(), scenario::to_string(result.status),
                result.metrics.conflicts, result.metrics.stitches,
                result.metrics.wirelength, result.metrics.failed_nets,
                result.drc_clean ? "clean" : "DIRTY", result.total_s,
                result.note.empty() ? "" : "  # ", result.note.c_str());
    std::fflush(stdout);
    if (json_os.is_open()) {
      io::write_scenario_line(json_os, scenario::ScenarioRunner::report_of(result));
      json_os.flush();
    }
  });

  int passed = 0;
  for (const auto& r : results)
    if (r.status == scenario::Status::kPass) ++passed;
  std::printf("suite: %d/%zu scenario(s) passed%s\n", passed, results.size(),
              options.quick ? " (quick)" : "");
  return scenario::ScenarioRunner::all_passed(results) ? 0 : 1;
}

int cmd_generate(const Args& args) {
  const auto name = args.get("case");
  if (!name) {
    std::fprintf(stderr, "generate: missing --case <name>\n");
    return 2;
  }
  const auto spec = find_case(*name);
  if (!spec) {
    std::fprintf(stderr, "generate: unknown case '%s' (see list-cases)\n",
                 name->c_str());
    return 2;
  }
  const db::Design design = benchgen::generate(*spec);
  const std::string out = args.get("out").value_or(*name + ".design");
  io::save_design(out, design);
  std::printf("wrote %s: %d nets, %d pins, %zu obstacles\n", out.c_str(),
              design.num_nets(), design.total_pins(), design.obstacles().size());
  return 0;
}

void print_metrics(const char* label, const eval::Metrics& m, double seconds) {
  std::printf("%s: conflicts=%d stitches=%d wirelength=%ld vias=%ld wrong_way=%ld "
              "out_of_guide=%ld failed=%d cost=%.4E time=%.2fs\n",
              label, m.conflicts, m.stitches, m.wirelength, m.vias, m.wrong_way,
              m.out_of_guide, m.failed_nets, m.cost, seconds);
}

int cmd_route(const Args& args) {
  const auto design_path = args.get("design");
  if (!design_path) {
    std::fprintf(stderr, "route: missing --design <file>\n");
    return 2;
  }
  const db::Design design = io::load_design(*design_path);
  const std::string router_name = args.get("router").value_or("mrtpl");

  global::GuideSet guides;
  const global::GuideSet* guides_ptr = nullptr;
  if (!args.has("no-guides")) {
    global::GlobalRouter gr(design);
    guides = gr.route_all();
    guides_ptr = &guides;
  }

  core::RouterConfig config;
  if (const auto rrr = args.get("rrr")) {
    const auto n = parse_int(*rrr);
    if (!n || *n < 0) {
      std::fprintf(stderr, "route: --rrr wants a non-negative integer\n");
      return 2;
    }
    config.max_rrr_iterations = *n;
  }
  if (const auto threads = args.get("threads")) {
    const auto n = parse_int(*threads);
    if (!n || *n < 1) {
      std::fprintf(stderr, "route: --threads must be >= 1\n");
      return 2;
    }
    config.rrr_threads = *n;
  }
  if (const auto tiles = args.get("tiles")) {
    const auto n = parse_int(*tiles);
    if (!n || *n < 1) {
      std::fprintf(stderr, "route: --tiles must be >= 1\n");
      return 2;
    }
    config.shard_tiles = *n;
  }
  if (args.has("rescan-conflicts")) config.incremental_conflicts = false;

  core::RouteBudget route_budget;
  if (const auto deadline = args.get("deadline")) {
    try {
      size_t used = 0;
      route_budget.deadline_s = std::stod(*deadline, &used);
      if (used != deadline->size() || route_budget.deadline_s <= 0.0)
        throw std::invalid_argument(*deadline);
    } catch (const std::exception&) {
      std::fprintf(stderr, "route: --deadline wants a positive number (seconds)\n");
      return 2;
    }
  }
  if (const auto max_relax = args.get("max-relax")) {
    const auto n = parse_int(*max_relax);
    if (!n || *n < 1) {
      std::fprintf(stderr, "route: --max-relax wants a positive integer\n");
      return 2;
    }
    route_budget.max_relaxations = static_cast<std::uint64_t>(*n);
  }
  if (!route_budget.unlimited() && router_name != "mrtpl") {
    std::fprintf(stderr, "route: --deadline/--max-relax need --router mrtpl\n");
    return 2;
  }

  grid::RoutingGrid grid(design);
  util::Timer timer;
  grid::Solution solution;
  if (router_name == "mrtpl") {
    core::MrTplRouter router(design, guides_ptr, config);
    solution = router.run(grid, route_budget);
  } else if (router_name == "dac12") {
    baseline::Dac12Router router(design, guides_ptr, config);
    solution = router.run(grid);
  } else if (router_name == "decompose") {
    solution = baseline::route_plain(design, guides_ptr, grid, config);
    baseline::decompose(grid, solution);
  } else {
    std::fprintf(stderr, "route: unknown --router '%s'\n", router_name.c_str());
    return 2;
  }
  const double seconds = timer.elapsed_s();
  const eval::Metrics m = eval::evaluate(grid, solution, guides_ptr);
  print_metrics(router_name.c_str(), m, seconds);

  if (const auto sol_path = args.get("solution")) {
    io::save_solution(*sol_path, grid, solution);
    std::printf("solution written to %s\n", sol_path->c_str());
  }
  if (const auto svg_path = args.get("svg")) {
    viz::save_svg(*svg_path, grid);
    std::printf("svg written to %s\n", svg_path->c_str());
  }
  if (solution.degraded()) {
    std::fprintf(stderr,
                 "route: budget expired, result is degraded "
                 "(%d partial, %d skipped net(s))\n",
                 solution.num_partial(), solution.num_skipped());
    return 4;
  }
  return 0;
}

int cmd_eval(const Args& args) {
  const auto design_path = args.get("design");
  const auto solution_path = args.get("solution");
  if (!design_path || !solution_path) {
    std::fprintf(stderr, "eval: need --design <file> and --solution <file>\n");
    return 2;
  }
  const db::Design design = io::load_design(*design_path);
  grid::RoutingGrid grid(design);
  std::ifstream is(*solution_path);
  if (!is) {
    std::fprintf(stderr, "eval: cannot open %s\n", solution_path->c_str());
    return 2;
  }
  const grid::Solution solution = io::read_solution(is, grid);
  const eval::Metrics m = eval::evaluate(grid, solution, nullptr);
  print_metrics("eval", m, 0.0);
  return m.conflicts == 0 ? 0 : 1;
}

/// Shared loader for the solution-consuming subcommands.
struct Loaded {
  db::Design design;
  grid::RoutingGrid grid;
  grid::Solution solution;

  explicit Loaded(const std::string& design_path, const std::string& solution_path)
      : design(io::load_design(design_path)), grid(design) {
    std::ifstream is(solution_path);
    if (!is) throw std::runtime_error("cannot open " + solution_path);
    solution = io::read_solution(is, grid);
  }
};

int cmd_verify(const Args& args) {
  const auto design_path = args.get("design");
  const auto solution_path = args.get("solution");
  if (!design_path || !solution_path) {
    std::fprintf(stderr, "verify: need --design <file> and --solution <file>\n");
    return 2;
  }
  Loaded l(*design_path, *solution_path);
  drc::DrcOptions options;
  if (args.has("no-color-check")) options.check_coloring = false;
  const drc::DrcReport report = drc::verify(l.grid, l.design, l.solution, options);
  if (report.clean()) {
    std::printf("verify: clean (%d nets)\n", l.design.num_nets());
    return 0;
  }
  std::printf("verify: %zu violation(s)\n%s", report.violations.size(),
              report.summary().c_str());
  return 1;
}

int cmd_refine(const Args& args) {
  const auto design_path = args.get("design");
  const auto solution_path = args.get("solution");
  if (!design_path || !solution_path) {
    std::fprintf(stderr, "refine: need --design <file> and --solution <file>\n");
    return 2;
  }
  Loaded l(*design_path, *solution_path);
  const eval::Metrics before = eval::evaluate(l.grid, l.solution, nullptr);
  const layout::RecolorStats stats = layout::recolor_refine(l.grid, l.solution);
  const eval::Metrics after = eval::evaluate(l.grid, l.solution, nullptr);
  std::printf("refine: %d move(s) in %d pass(es)\n", stats.moves, stats.passes);
  print_metrics("before", before, 0.0);
  print_metrics("after ", after, 0.0);
  if (const auto out = args.get("out")) {
    io::save_solution(*out, l.grid, l.solution);
    std::printf("refined solution written to %s\n", out->c_str());
  }
  return 0;
}

int cmd_report(const Args& args) {
  const auto design_path = args.get("design");
  const auto solution_path = args.get("solution");
  if (!design_path || !solution_path) {
    std::fprintf(stderr, "report: need --design <file> and --solution <file>\n");
    return 2;
  }
  Loaded l(*design_path, *solution_path);
  io::CaseReport report;
  report.case_name = l.design.name();
  report.flow = args.get("flow").value_or("saved");
  report.metrics = eval::evaluate(l.grid, l.solution, nullptr);
  report.layers = eval::per_layer(l.grid, l.solution);
  report.degrees = eval::per_degree(l.grid, l.design, l.solution);
  io::write_report_array(std::cout, {report});
  return 0;
}

/// Positive-double flag parser (deadline/watermark seconds).
std::optional<double> parse_seconds(const std::string& word) {
  try {
    size_t used = 0;
    const double value = std::stod(word, &used);
    if (used != word.size() || value <= 0.0) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Parse the SessionConfig flags shared by `session` and `serve` into
/// `config`; returns 0 or the usage exit code (2) after a message.
int parse_session_config(const Args& args, const char* cmd,
                         session::SessionConfig* config) {
  if (const auto every = args.get("snapshot-every")) {
    const auto n = parse_int(*every);
    if (!n || *n < 0) {
      std::fprintf(stderr, "%s: --snapshot-every wants an integer >= 0\n", cmd);
      return 2;
    }
    config->snapshot_every = *n;
  }
  if (const auto deadline = args.get("deadline")) {
    const auto s = parse_seconds(*deadline);
    if (!s) {
      std::fprintf(stderr, "%s: --deadline wants a positive number (seconds)\n",
                   cmd);
      return 2;
    }
    config->deadline_s = *s;
  }
  if (const auto relax = args.get("degrade-relax")) {
    const auto n = parse_int(*relax);
    if (!n || *n < 1) {
      std::fprintf(stderr, "%s: --degrade-relax wants a positive integer\n", cmd);
      return 2;
    }
    config->degrade_relax_cap = static_cast<std::uint64_t>(*n);
  }
  if (const auto watermark = args.get("latency-watermark")) {
    const auto s = parse_seconds(*watermark);
    if (!s) {
      std::fprintf(
          stderr, "%s: --latency-watermark wants a positive number (seconds)\n",
          cmd);
      return 2;
    }
    config->latency_watermark_s = *s;
  }
  if (const auto depth = args.get("max-queue")) {
    const auto n = parse_int(*depth);
    if (!n || *n < 1) {
      std::fprintf(stderr, "%s: --max-queue wants a positive integer\n", cmd);
      return 2;
    }
    config->max_queue_depth = *n;
  }
  return 0;
}

/// Open the session backend shared by `session` and `serve`: --recover
/// resumes a store, otherwise route --design from scratch (into --store
/// when given, else a bare volatile session). Returns 0 or an exit code.
int open_session_backend(const Args& args, const char* cmd,
                         const session::SessionConfig& config,
                         std::unique_ptr<session::SessionStore>* store,
                         std::unique_ptr<session::RouterSession>* bare) {
  if (args.has("recover")) {
    const auto dir = args.get("store");
    if (!dir) {
      std::fprintf(stderr, "%s: --recover needs --store <dir>\n", cmd);
      return 2;
    }
    session::RecoveryReport rep;
    *store = session::SessionStore::recover(*dir, config, &rep);
    std::printf("recovered: snapshot seq=%llu, %d replayed, %d skipped, "
                "session seq=%llu%s\n",
                static_cast<unsigned long long>(rep.snapshot_seq), rep.replayed,
                rep.skipped,
                static_cast<unsigned long long>((*store)->session().seq()),
                rep.truncated_tail ? ", torn journal tail truncated" : "");
    if (rep.dropped_bytes > 0)
      std::printf("recovered: %llu uncommitted byte(s) dropped from the journal\n",
                  static_cast<unsigned long long>(rep.dropped_bytes));
  } else {
    const auto design_path = args.get("design");
    if (!design_path) {
      std::fprintf(stderr, "%s: missing --design <file> (or --recover)\n", cmd);
      return 2;
    }
    const db::Design design = io::load_design(*design_path);
    global::GuideSet guides;
    const global::GuideSet* guides_ptr = nullptr;
    if (!args.has("no-guides")) {
      global::GlobalRouter gr(design);
      guides = gr.route_all();
      guides_ptr = &guides;
    }
    if (const auto dir = args.get("store")) {
      *store = session::SessionStore::create(*dir, design, config, guides_ptr);
    } else {
      *bare = std::make_unique<session::RouterSession>(design, config, guides_ptr);
    }
    session::RouterSession& s = *store ? (*store)->session() : **bare;
    std::printf("%s: %d nets routed, %d conflict(s) initially\n", cmd,
                s.design().num_nets(),
                s.conflict_index() != nullptr
                    ? static_cast<int>(s.conflict_index()->conflicts().size())
                    : static_cast<int>(core::detect_conflicts(s.grid()).size()));
  }
  return 0;
}

int cmd_session(const Args& args) {
  session::SessionConfig config;
  if (const int rc = parse_session_config(args, "session", &config); rc != 0)
    return rc;

  std::unique_ptr<session::SessionStore> store;
  std::unique_ptr<session::RouterSession> bare;
  if (const int rc = open_session_backend(args, "session", config, &store, &bare);
      rc != 0)
    return rc;
  session::RouterSession& sess = store ? store->session() : *bare;

  // Worst outcome wins the exit code; "rejected" (1) outranks
  // "degraded/shed/deadline" (4), matching 1 = flow failure elsewhere.
  int worst = 0;
  const auto fold = [&worst](session::EditStatus status) {
    int code = 0;
    if (status == session::EditStatus::kRejected) code = 1;
    else if (status != session::EditStatus::kApplied) code = 4;
    if (code == 1 || worst == 1) worst = 1;
    else if (code > worst) worst = code;
  };

  if (const auto script = args.get("script")) {
    const std::vector<session::Edit> edits = session::load_edit_script(*script);
    for (size_t i = 0; i < edits.size(); ++i) {
      const session::EditResponse resp =
          store ? store->submit(edits[i]) : bare->submit(edits[i]);
      std::printf("edit %zu %s: %s seq=%llu dirty=%d conflicts=%d failed=%d "
                  "%.3fs%s%s\n",
                  i + 1, session::to_string(edits[i].kind),
                  session::to_string(resp.status),
                  static_cast<unsigned long long>(resp.seq), resp.dirty_nets,
                  resp.conflicts, resp.failed, resp.apply_s,
                  resp.note.empty() ? "" : "  # ", resp.note.c_str());
      for (const auto& d : resp.dispositions)
        std::printf("  net %d (%s): %s\n", d.net, d.name.c_str(),
                    d.state.c_str());
      fold(resp.status);
    }
  }

  if (args.has("audit")) {
    const session::AuditReport audit = session::audit_session(sess);
    if (audit.ok) {
      std::printf("audit: coherent (design ↔ grid ↔ solution ↔ index)\n");
    } else {
      for (const auto& p : audit.problems)
        std::fprintf(stderr, "audit: %s\n", p.c_str());
      worst = 1;
    }
  }

  if (const auto out = args.get("out")) {
    io::save_solution(*out, sess.grid(), sess.solution());
    std::printf("solution written to %s\n", out->c_str());
  }
  std::printf("session: seq=%llu routed=%d failed=%d\n",
              static_cast<unsigned long long>(sess.seq()),
              sess.solution().num_routed(), sess.solution().num_failed());
  return worst;
}

int cmd_serve(const Args& args) {
  session::SessionConfig config;
  if (const int rc = parse_session_config(args, "serve", &config); rc != 0)
    return rc;

  server::DaemonConfig dconfig;
  if (const auto sock = args.get("socket")) dconfig.unix_path = *sock;
  if (const auto port = args.get("port")) {
    const auto n = parse_int(*port);
    if (!n || *n < 0 || *n > 65535) {
      std::fprintf(stderr, "serve: --port wants 0..65535 (0 = ephemeral)\n");
      return 2;
    }
    dconfig.tcp_port = *n;
  } else if (!dconfig.unix_path.empty()) {
    dconfig.tcp_port = -1;  // unix only unless a port was asked for
  }
  if (const auto idle = args.get("idle-timeout")) {
    const auto s = parse_seconds(*idle);
    if (!s) {
      std::fprintf(stderr,
                   "serve: --idle-timeout wants a positive number (seconds)\n");
      return 2;
    }
    dconfig.idle_timeout_s = *s;
  }
  if (const auto quota = args.get("per-client")) {
    const auto n = parse_int(*quota);
    if (!n || *n < 1) {
      std::fprintf(stderr, "serve: --per-client wants a positive integer\n");
      return 2;
    }
    dconfig.dispatch.per_client_pending = *n;
  }
  if (const auto depth = args.get("max-pending")) {
    const auto n = parse_int(*depth);
    if (!n || *n < 1) {
      std::fprintf(stderr, "serve: --max-pending wants a positive integer\n");
      return 2;
    }
    dconfig.dispatch.max_pending = *n;
  }

  std::unique_ptr<session::SessionStore> store;
  std::unique_ptr<session::RouterSession> bare;
  if (const int rc = open_session_backend(args, "serve", config, &store, &bare);
      rc != 0)
    return rc;

  std::unique_ptr<server::Daemon> daemon;
  if (store) {
    daemon = std::make_unique<server::Daemon>(*store, std::move(dconfig));
  } else {
    daemon = std::make_unique<server::Daemon>(*bare, std::move(dconfig));
  }
  daemon->install_signal_handlers();
  daemon->listen();
  if (const auto sock = args.get("socket"))
    std::printf("serve: listening on unix:%s\n", sock->c_str());
  if (daemon->port() > 0)
    std::printf("serve: listening on tcp:127.0.0.1:%d\n", daemon->port());
  // Scripts background this process and wait for the listening lines.
  std::fflush(stdout);

  const int rc = daemon->run();
  std::printf("serve: drained, seq=%llu, %llu edit(s) applied, %llu shed\n",
              static_cast<unsigned long long>(
                  store ? store->session().seq() : bare->seq()),
              static_cast<unsigned long long>(daemon->edits_applied()),
              static_cast<unsigned long long>(daemon->edits_shed()));
  return rc;
}

int cmd_send(const Args& args) {
  const auto sock = args.get("socket");
  const auto port_s = args.get("port");
  if (!sock && !port_s) {
    std::fprintf(stderr, "send: needs --socket <path> or --port <N>\n");
    return 2;
  }
  double wait_s = 0.0;
  if (const auto wait = args.get("wait")) {
    const auto s = parse_seconds(*wait);
    if (!s) {
      std::fprintf(stderr, "send: --wait wants a positive number (seconds)\n");
      return 2;
    }
    wait_s = *s;
  }
  int port = 0;
  if (port_s) {
    const auto n = parse_int(*port_s);
    if (!n || *n < 1 || *n > 65535) {
      std::fprintf(stderr, "send: --port wants 1..65535\n");
      return 2;
    }
    port = *n;
  }

  server::Client client = sock ? server::Client::connect_unix(*sock, wait_s)
                               : server::Client::connect_tcp(port, wait_s);

  const server::Response hello =
      client.hello(args.get("name").value_or(""));
  if (!hello.ok) {
    std::fprintf(stderr, "send: hello rejected (%s): %s\n", hello.code.c_str(),
                 hello.text.c_str());
    return 1;
  }
  std::printf("hello: daemon at seq=%llu\n",
              static_cast<unsigned long long>(hello.seq));

  // Same worst-outcome exit-code fold as `session --script`.
  int worst = 0;
  const auto fold = [&worst](session::EditStatus status) {
    int code = 0;
    if (status == session::EditStatus::kRejected) code = 1;
    else if (status != session::EditStatus::kApplied) code = 4;
    if (code == 1 || worst == 1) worst = 1;
    else if (code > worst) worst = code;
  };

  // --script takes the same mrtpl-edits file `session --script` does;
  // each edit crosses the wire re-serialized through format_edit (the
  // same text the journal records).
  std::vector<std::string> lines;
  if (const auto script = args.get("script")) {
    for (const session::Edit& edit : session::load_edit_script(*script))
      lines.push_back(session::format_edit(edit));
  }
  if (const auto one = args.get("edit")) lines.push_back(*one);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const server::Response r = client.submit(lines[i]);
    if (!r.ok) {
      std::printf("edit %zu: %s (%s)\n", i + 1, r.code.c_str(), r.text.c_str());
      if (r.code == "shed") {
        if (worst != 1 && worst < 4) worst = 4;
      } else {
        worst = 1;
      }
      continue;
    }
    std::printf("edit %zu: %s seq=%llu dirty=%d conflicts=%d failed=%d%s%s\n",
                i + 1, session::to_string(r.edit.status),
                static_cast<unsigned long long>(r.edit.seq), r.edit.dirty_nets,
                r.edit.conflicts, r.edit.failed,
                r.edit.note.empty() ? "" : "  # ", r.edit.note.c_str());
    for (const auto& d : r.edit.dispositions)
      std::printf("  net %d (%s): %s\n", d.net, d.name.c_str(), d.state.c_str());
    fold(r.edit.status);
  }

  if (const auto token = args.get("ping")) {
    const server::Response r = client.ping(*token);
    std::printf("ping: %s\n", r.ok ? r.text.c_str() : "failed");
    if (!r.ok) worst = 1;
  }

  if (args.has("drain")) {
    const server::Response r = client.drain();
    std::printf("drain: %s\n", r.ok ? "ok" : r.text.c_str());
    if (!r.ok) worst = 1;
  } else {
    (void)client.bye();
  }
  return worst;
}

}  // namespace

int run(const std::vector<std::string>& argv) {
  const Args args = Args::parse(argv);
  try {
    if (args.command == "list-cases") return cmd_list_cases();
    if (args.command == "suite") return cmd_suite(args);
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "route") return cmd_route(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "refine") return cmd_refine(args);
    if (args.command == "report") return cmd_report(args);
    if (args.command == "session") return cmd_session(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "send") return cmd_send(args);
  } catch (const io::ParseError& e) {
    // Malformed input gets its own exit code so scripts (and the fuzzer's
    // parse-robustness oracle) can tell "bad file" from "router broke".
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
    return 1;
  }
  std::fprintf(stderr,
               "usage: mrtpl_cli "
               "<list-cases|suite|generate|route|eval|verify|refine|report"
               "|session|serve|send> [options]\n"
               "  suite    [--filter <substr>] [--quick] [--json file]\n"
               "           [--threads N] [--tiles K] [--timeout S] [--list]\n"
               "           Run the stress-scenario registry end to end; one\n"
               "           JSON metrics line per scenario with --json.\n"
               "  generate --case <name> [--out file]\n"
               "  route    --design <file> [--router mrtpl|dac12|decompose]\n"
               "           [--solution file] [--svg file] [--no-guides] [--rrr N]\n"
               "           [--threads N] [--tiles K] [--rescan-conflicts]\n"
               "           [--deadline S] [--max-relax N]  (degraded result: exit 4)\n"
               "  eval     --design <file> --solution <file>\n"
               "  verify   --design <file> --solution <file> [--no-color-check]\n"
               "  refine   --design <file> --solution <file> [--out file]\n"
               "  report   --design <file> --solution <file> [--flow name]\n"
               "  session  --design <file> [--store dir] [--script edits.txt]\n"
               "           [--recover] [--snapshot-every N] [--deadline S]\n"
               "           [--degrade-relax N] [--latency-watermark S]\n"
               "           [--max-queue N] [--no-guides] [--audit] [--out file]\n"
               "           Resident ECO session; --store makes it\n"
               "           crash-consistent, --recover resumes it.\n"
               "  serve    --design <file> [--socket path] [--port N]\n"
               "           [--store dir] [--recover] [--idle-timeout S]\n"
               "           [--per-client N] [--max-pending N]\n"
               "           [+ session config flags]\n"
               "           Serve the resident session over unix/TCP sockets\n"
               "           (routing as a service); SIGTERM or a client\n"
               "           `drain` shuts it down gracefully (exit 0).\n"
               "  send     (--socket path | --port N) [--wait S] [--name s]\n"
               "           [--script edits.txt] [--edit line] [--ping token]\n"
               "           [--drain | --bye]\n"
               "           Drive a running daemon; exit codes match\n"
               "           `session --script` (a shed edit exits 4).\n");
  return 2;
}

int run(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc > 1 ? static_cast<size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args);
}

}  // namespace mrtpl::cli
