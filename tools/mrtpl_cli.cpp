/// \file mrtpl_cli.cpp
/// Binary wrapper of the mrtpl command-line front end. All subcommand
/// logic lives in cli.cpp (library target mrtpl::cli) so tests can run
/// the same code paths in-process; see cli.hpp for the subcommand list.

#include "cli.hpp"

int main(int argc, char** argv) { return mrtpl::cli::run(argc, argv); }
