/// \file fuzz_differential.cpp
/// Differential fuzzing harness (src/fuzz). Generates mutated routing
/// cases in two domains — benchgen::CaseSpec knobs and raw serialized
/// design text — runs each through the cross-checking oracle
/// (fuzz/differential.hpp), shrinks failing text inputs, and emits repro
/// files into a corpus directory.
///
///   fuzz_differential [--cases N] [--seed S] [--corpus DIR]
///                     [--max-rrr N] [--no-dac12]
///       Fixed-seed fuzz run: N cases, alternating spec/text domains.
///       Failing inputs are shrunk and written to DIR as
///       fuzz_<seed>_<case>.design. Exit 0 iff no findings.
///   fuzz_differential --replay DIR [--max-rrr N]
///       Re-run the oracle over every *.design file in DIR (the committed
///       regression corpus). Exit 0 iff no findings.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/mutate.hpp"
#include "io/design_io.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
using namespace mrtpl;

namespace {

struct Options {
  int cases = 200;
  std::uint64_t seed = 1;
  std::string corpus = "tests/golden/fuzz_corpus";
  std::optional<std::string> replay;
  int max_rrr = 3;
  bool run_dac12 = true;
};

void print_findings(const std::string& label, const fuzz::OracleReport& report) {
  for (const auto& f : report.findings)
    std::fprintf(stderr, "FINDING %s [%s] %s\n", label.c_str(), f.check.c_str(),
                 f.detail.c_str());
}

/// Shrink a failing text input: adopt any candidate that still fails,
/// repeat until none does. Terminates because candidates strictly shrink.
std::string shrink_text(const std::string& text, const fuzz::OracleOptions& oracle) {
  std::string current = text;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (const auto& candidate : fuzz::shrink_candidates(current)) {
      if (!fuzz::check_text(candidate, oracle).clean()) {
        current = candidate;
        reduced = true;
        break;
      }
    }
  }
  return current;
}

int write_repro(const Options& options, const std::string& name,
                const std::string& text) {
  std::error_code ec;
  fs::create_directories(options.corpus, ec);
  const fs::path path = fs::path(options.corpus) / name;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "fuzz: cannot write repro %s\n", path.string().c_str());
    return 1;
  }
  os << text;
  std::fprintf(stderr, "fuzz: repro written to %s\n", path.string().c_str());
  return 0;
}

int run_replay(const Options& options) {
  fuzz::OracleOptions oracle;
  oracle.max_rrr = options.max_rrr;
  oracle.run_dac12 = options.run_dac12;
  int findings = 0, files = 0;
  std::vector<fs::path> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(*options.replay, ec))
    if (entry.path().extension() == ".design") paths.push_back(entry.path());
  if (ec) {
    std::fprintf(stderr, "fuzz: cannot read corpus dir %s: %s\n",
                 options.replay->c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    ++files;
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const fuzz::OracleReport report = fuzz::check_text(buffer.str(), oracle);
    print_findings(path.filename().string(), report);
    findings += static_cast<int>(report.findings.size());
  }
  std::printf("fuzz replay: %d file(s), %d finding(s)\n", files, findings);
  return findings == 0 ? 0 : 1;
}

int run_fuzz(const Options& options) {
  fuzz::OracleOptions oracle;
  oracle.max_rrr = options.max_rrr;
  oracle.run_dac12 = options.run_dac12;

  // Base inputs: the unit-test case plus a denser variant — small enough
  // that one oracle run takes milliseconds, structured enough that
  // mutations reach interesting generator and parser states.
  std::vector<benchgen::CaseSpec> bases;
  bases.push_back(benchgen::tiny_case());
  {
    benchgen::CaseSpec dense = benchgen::tiny_case();
    dense.name = "fuzz_dense";
    dense.num_nets = 24;
    dense.local_net_fraction = 1.0;
    dense.local_span = 8;
    bases.push_back(dense);
  }
  std::vector<std::string> base_texts;
  for (const auto& spec : bases)
    base_texts.push_back(io::design_to_string(benchgen::generate(spec)));

  int findings = 0, skipped = 0, repro_errors = 0;
  for (int i = 0; i < options.cases; ++i) {
    util::Rng rng(options.seed * 0x9e3779b9u + static_cast<std::uint64_t>(i));
    const auto& base = bases[static_cast<size_t>(i) % bases.size()];
    const std::string label =
        "case_" + std::to_string(i) + (i % 2 == 0 ? "_spec" : "_text");

    fuzz::OracleReport report;
    std::string repro_text;
    if (i % 2 == 0) {
      const benchgen::CaseSpec spec = fuzz::mutate_spec(base, rng);
      report = fuzz::check_spec(spec, oracle);
      if (!report.clean() && spec.valid())
        repro_text = io::design_to_string(benchgen::generate(spec));
    } else {
      std::string text = base_texts[static_cast<size_t>(i) % base_texts.size()];
      const int rounds = rng.next_int(1, 3);
      for (int r = 0; r < rounds; ++r) text = fuzz::mutate_text(text, rng);
      report = fuzz::check_text(text, oracle);
      if (!report.clean()) repro_text = shrink_text(text, oracle);
    }

    if (report.skipped) ++skipped;
    if (!report.clean()) {
      print_findings(label, report);
      findings += static_cast<int>(report.findings.size());
      if (!repro_text.empty()) {
        const std::string name = "fuzz_" + std::to_string(options.seed) + "_" +
                                 std::to_string(i) + ".design";
        repro_errors += write_repro(options, name, repro_text);
      }
    }
  }
  std::printf("fuzz: %d case(s), %d skipped, %d finding(s)\n", options.cases,
              skipped, findings);
  return findings == 0 && repro_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cases") {
      if (const char* v = value()) options.cases = std::atoi(v);
    } else if (arg == "--seed") {
      if (const char* v = value())
        options.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--corpus") {
      if (const char* v = value()) options.corpus = v;
    } else if (arg == "--replay") {
      if (const char* v = value()) options.replay = v;
    } else if (arg == "--max-rrr") {
      if (const char* v = value()) options.max_rrr = std::atoi(v);
    } else if (arg == "--no-dac12") {
      options.run_dac12 = false;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_differential [--cases N] [--seed S] "
                   "[--corpus DIR] [--replay DIR] [--max-rrr N] [--no-dac12]\n");
      return 2;
    }
  }
  if (options.cases < 0 || options.max_rrr < 0) {
    std::fprintf(stderr, "fuzz: --cases/--max-rrr must be non-negative\n");
    return 2;
  }
  try {
    return options.replay ? run_replay(options) : run_fuzz(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: fatal: %s\n", e.what());
    return 1;
  }
}
