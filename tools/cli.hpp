#pragma once
/// \file cli.hpp
/// Library entry point of the mrtpl command-line front end. The binary
/// (mrtpl_cli.cpp) is a thin main() around run(); tests drive the same
/// subcommand paths in-process via this header.

#include <string>
#include <vector>

namespace mrtpl::cli {

/// Execute one CLI invocation. `args` are the argv words *after* the
/// program name, e.g. {"route", "--design", "foo.design"}. Output goes to
/// stdout/stderr exactly as the binary's would. Returns the process exit
/// code: 0 success, 1 flow-level failure (e.g. conflicts remain, DRC
/// violations, runtime error), 2 usage error.
int run(const std::vector<std::string>& args);

/// argv-style adapter used by main().
int run(int argc, char** argv);

}  // namespace mrtpl::cli
